package experiments

import (
	"fmt"
	"strings"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/stats"
)

// Fig2Runs declares Figure 2's simulations: NoSQ on every proxy.
func Fig2Runs(r *Runner) []RunSpec { return r.suite(modelSpec(config.NoSQ)) }

// Fig2 reproduces Figure 2: how NoSQ loads obtain their values (Direct
// access / Bypassing / Delayed access).
func Fig2(r *Runner) (string, error) {
	t := stats.NewTable("Figure 2: NoSQ load instruction distribution (%)",
		"bench", "direct", "bypassing", "delayed")
	for _, b := range r.Benchmarks() {
		st, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		loads := float64(st.TotalLoads())
		if loads == 0 {
			t.Add(b, "-", "-", "-")
			continue
		}
		pct := func(c core.LoadCategory) float64 {
			return 100 * float64(st.LoadCount[c]) / loads
		}
		t.AddF(1, b, pct(core.LoadDirect), pct(core.LoadBypass), pct(core.LoadDelayed))
	}
	return t.String(), nil
}

// Fig3Runs declares Figure 3's simulations: NoSQ on every proxy.
func Fig3Runs(r *Runner) []RunSpec { return r.suite(modelSpec(config.NoSQ)) }

// Fig3 reproduces Figure 3: mean execution time of Delayed-access loads
// relative to Bypassing loads under NoSQ. Ratios above 1 mean delayed
// loads take longer (the paper reports roughly 7x on average, with mcf
// the lone inversion).
func Fig3(r *Runner) (string, error) {
	t := stats.NewTable("Figure 3: delayed vs bypassing load execution time (NoSQ)",
		"bench", "bypass(cyc)", "delayed(cyc)", "ratio")
	var ratios []float64
	for _, b := range r.Benchmarks() {
		st, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		byp := st.MeanExecTime(core.LoadBypass)
		del := st.MeanExecTime(core.LoadDelayed)
		if byp <= 0 || del <= 0 {
			t.Add(b, stats.F(byp, 2), stats.F(del, 2), "-")
			continue
		}
		ratio := del / byp
		ratios = append(ratios, ratio)
		t.AddF(2, b, byp, del, ratio)
	}
	out := t.String()
	if len(ratios) > 0 {
		out += fmt.Sprintf("geomean ratio: %.2fx (paper: ~7x, mcf inverted)\n", stats.Geomean(ratios))
	}
	return out, nil
}

// Fig5Runs declares Figure 5's simulations: DMDP on every proxy.
func Fig5Runs(r *Runner) []RunSpec { return r.suite(modelSpec(config.DMDP)) }

// Fig5 reproduces Figure 5: ground-truth outcomes of low-confidence load
// predictions under DMDP — IndepStore should dominate everywhere.
func Fig5(r *Runner) (string, error) {
	t := stats.NewTable("Figure 5: low-confidence load prediction outcomes (DMDP, %)",
		"bench", "lowconf", "IndepStore", "DiffStore", "Correct")
	var indepTot, allTot float64
	for _, b := range r.Benchmarks() {
		st, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		n := float64(st.LowConfCount)
		if n == 0 {
			t.Add(b, "0", "-", "-", "-")
			continue
		}
		ind := 100 * float64(st.LowConfOutcomes[core.LowConfIndepStore]) / n
		dif := 100 * float64(st.LowConfOutcomes[core.LowConfDiffStore]) / n
		cor := 100 * float64(st.LowConfOutcomes[core.LowConfCorrect]) / n
		indepTot += float64(st.LowConfOutcomes[core.LowConfIndepStore])
		allTot += n
		t.AddF(1, b, st.LowConfCount, ind, dif, cor)
	}
	out := t.String()
	if allTot > 0 {
		out += fmt.Sprintf("overall IndepStore share: %.1f%% (paper: dominates every benchmark)\n",
			100*indepTot/allTot)
	}
	return out, nil
}

// Fig12Runs declares Figure 12's simulations: the four default models.
func Fig12Runs(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.Baseline), modelSpec(config.NoSQ),
		modelSpec(config.DMDP), modelSpec(config.Perfect))
}

// Fig12 reproduces Figure 12: IPC of NoSQ, DMDP and Perfect normalized to
// the baseline store-queue machine, with Integer/Float geometric means.
// The headline numbers are DMDP-over-NoSQ: +7.17% Int, +4.48% FP.
func Fig12(r *Runner) (string, error) {
	t := stats.NewTable("Figure 12: speedup over baseline (IPC ratio)",
		"bench", "nosq", "dmdp", "perfect", "dmdp/nosq")
	type accum struct{ nosq, dmdp, perfect, rel []float64 }
	byClass := map[string]*accum{"Int": {}, "FP": {}}

	for _, b := range r.Benchmarks() {
		base, err := r.RunModel(b, config.Baseline)
		if err != nil {
			continue // failure recorded; row omitted
		}
		nosq, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		dmdp, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		perf, err := r.RunModel(b, config.Perfect)
		if err != nil {
			continue // failure recorded; row omitted
		}
		bn := nosq.IPC() / base.IPC()
		bd := dmdp.IPC() / base.IPC()
		bp := perf.IPC() / base.IPC()
		rel := dmdp.IPC() / nosq.IPC()
		cls := "Int"
		if isFP(r, b) {
			cls = "FP"
		}
		a := byClass[cls]
		a.nosq = append(a.nosq, bn)
		a.dmdp = append(a.dmdp, bd)
		a.perfect = append(a.perfect, bp)
		a.rel = append(a.rel, rel)
		t.AddF(3, b, bn, bd, bp, rel)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, cls := range []string{"Int", "FP"} {
		a := byClass[cls]
		if len(a.nosq) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s geomean: nosq %.3f, dmdp %.3f, perfect %.3f | dmdp over nosq %s\n",
			cls, stats.Geomean(a.nosq), stats.Geomean(a.dmdp), stats.Geomean(a.perfect),
			stats.Pct(stats.Geomean(a.rel)))
	}
	b.WriteString("paper: nosq 0.975/1.008, dmdp 1.045/1.053, perfect 1.068/1.066; dmdp over nosq +7.17% Int, +4.48% FP\n")
	return b.String(), nil
}

// Fig14Runs declares Figure 14's simulations: the DMDP store-buffer
// sweep. (The 32-entry point is the default DMDP machine, so the digest
// cache folds it into the shared "dmdp" run.)
func Fig14Runs(r *Runner) []RunSpec {
	var specs []RunSpec
	for _, n := range []int{16, 32, 64} {
		specs = append(specs, RunSpec{
			Cfg:   config.Default(config.DMDP).WithStoreBuffer(n),
			Label: fmt.Sprintf("dmdp-sb%d", n),
		})
	}
	return r.suite(specs...)
}

// Fig14 reproduces Figure 14: DMDP with 32- and 64-entry store buffers
// normalized to a 16-entry one, plus the store-buffer-full stall cycles
// per 1k instructions (paper: 503.1 / 220.5 / 75.0).
func Fig14(r *Runner) (string, error) {
	t := stats.NewTable("Figure 14: store buffer size sweep (DMDP, speedup vs 16-entry)",
		"bench", "sb32/sb16", "sb64/sb16", "stall16/1k", "stall32/1k", "stall64/1k")
	sizes := []int{16, 32, 64}
	type acc struct{ s32, s64 []float64 }
	byClass := map[string]*acc{"Int": {}, "FP": {}}
	var stalls [3]float64
	count := 0

	for _, b := range r.Benchmarks() {
		var st [3]*core.Stats
		ok := true
		for i, n := range sizes {
			cfg := config.Default(config.DMDP).WithStoreBuffer(n)
			s, err := r.Run(b, cfg, fmt.Sprintf("dmdp-sb%d", n))
			if err != nil {
				ok = false // failure recorded; benchmark omitted
				break
			}
			st[i] = s
		}
		if !ok {
			continue
		}
		for i := range sizes {
			stalls[i] += st[i].SBStallsPerKilo()
		}
		count++
		r32 := st[1].IPC() / st[0].IPC()
		r64 := st[2].IPC() / st[0].IPC()
		cls := "Int"
		if isFP(r, b) {
			cls = "FP"
		}
		byClass[cls].s32 = append(byClass[cls].s32, r32)
		byClass[cls].s64 = append(byClass[cls].s64, r64)
		t.AddF(3, b, r32, r64,
			stats.F(st[0].SBStallsPerKilo(), 1),
			stats.F(st[1].SBStallsPerKilo(), 1),
			stats.F(st[2].SBStallsPerKilo(), 1))
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, cls := range []string{"Int", "FP"} {
		a := byClass[cls]
		if len(a.s32) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s geomean: 32-entry %s, 64-entry %s over 16-entry\n",
			cls, stats.Pct(stats.Geomean(a.s32)), stats.Pct(stats.Geomean(a.s64)))
	}
	if count > 0 {
		fmt.Fprintf(&b, "mean SB-full stalls per 1k instr: 16e %.1f, 32e %.1f, 64e %.1f (paper: 503.1/220.5/75.0)\n",
			stalls[0]/float64(count), stalls[1]/float64(count), stalls[2]/float64(count))
	}
	b.WriteString("paper: +2.07%/+2.77% Int, +3.81%/+5.01% FP; lbm most sensitive\n")
	return b.String(), nil
}

// Fig15Runs declares Figure 15's simulations: NoSQ and DMDP (the power
// model evaluates on their cached stats).
func Fig15Runs(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.NoSQ), modelSpec(config.DMDP))
}

// Fig15 reproduces Figure 15: DMDP's energy-delay product normalized to
// NoSQ (paper: saves 8.5% Int, 5.1% FP; ~6.7% overall).
func Fig15(r *Runner) (string, error) {
	t := stats.NewTable("Figure 15: EDP of DMDP normalized to NoSQ",
		"bench", "energy ratio", "delay ratio", "EDP ratio")
	type acc struct{ edp []float64 }
	byClass := map[string]*acc{"Int": {}, "FP": {}}
	for _, b := range r.Benchmarks() {
		en, err := r.Energy(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		ed, err := r.Energy(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		sn, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue
		}
		sd, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue
		}
		eratio := ed.TotalPJ / en.TotalPJ
		dratio := float64(sd.Cycles) / float64(sn.Cycles)
		edp := ed.EDP / en.EDP
		cls := "Int"
		if isFP(r, b) {
			cls = "FP"
		}
		byClass[cls].edp = append(byClass[cls].edp, edp)
		t.AddF(3, b, eratio, dratio, edp)
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, cls := range []string{"Int", "FP"} {
		a := byClass[cls]
		if len(a.edp) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s geomean EDP ratio: %.3f (paper: %s)\n",
			cls, stats.Geomean(a.edp), map[string]string{"Int": "0.915", "FP": "0.949"}[cls])
	}
	return b.String(), nil
}

func isFP(r *Runner, bench string) bool {
	for _, n := range r.fpBenchmarks() {
		if n == bench {
			return true
		}
	}
	return false
}
