package experiments

import (
	"errors"
	"strings"
	"testing"

	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/faults"
)

// poisonedRunner makes hmmer's default DMDP machine fail: a run with
// value corruption enabled produces a genuine oracle failure (with retry
// and diagnostics), and its cached result is then aliased onto the
// default DMDP digest. Results are keyed by machine digest, so the
// faulted config alone would (correctly) never be consulted by the
// experiments — these tests exercise failure isolation regardless of how
// the default machine came to fail.
func poisonedRunner(t *testing.T) *Runner {
	t.Helper()
	r := NewRunner(Options{
		Budget:     4000,
		Benchmarks: []string{"hmmer", "bzip2"},
		Parallel:   false,
	})
	cfg := config.Default(config.DMDP).WithFaults(faults.Config{Seed: 5, ValueCorruptRate: 0.01})
	if _, err := r.Run("hmmer", cfg, "dmdp"); err == nil {
		t.Fatal("poisoned run unexpectedly succeeded")
	}
	def := config.Default(config.DMDP)
	r.mu.Lock()
	src := r.calls[runKey{bench: "hmmer", digest: cfg.Digest(), budget: r.opt.Budget}]
	r.calls[runKey{bench: "hmmer", digest: def.Digest(), budget: r.opt.Budget}] = &runCall{res: src.res}
	r.mu.Unlock()
	return r
}

// hasRow reports whether a table has a data row for the benchmark.
func hasRow(table, bench string) bool {
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), bench) {
			return true
		}
	}
	return false
}

// One corrupted benchmark must not sink the suite: its rows drop out,
// the other benchmarks still render, and the failure table names it.
func TestExperimentsSurvivePoisonedBenchmark(t *testing.T) {
	r := poisonedRunner(t)

	out, err := TableVI(r)
	if err != nil {
		t.Fatalf("TableVI aborted instead of degrading: %v", err)
	}
	// The footnote quotes the paper's hmmer figures as static text, so
	// look for a data row (line starting with the benchmark name).
	if hasRow(out, "hmmer") {
		t.Errorf("poisoned benchmark still has a row:\n%s", out)
	}
	if !hasRow(out, "bzip2") {
		t.Errorf("healthy benchmark lost its row:\n%s", out)
	}

	fs := r.Failures()
	if len(fs) != 1 {
		t.Fatalf("%d failures recorded, want 1: %+v", len(fs), fs)
	}
	f := fs[0]
	if f.Bench != "hmmer" || f.Label != "dmdp" {
		t.Errorf("failure misattributed: %+v", f)
	}
	if !f.Retried {
		t.Error("failed run was not retried before being declared failed")
	}
	var se *core.SimError
	if !errors.As(f.Err, &se) || se.Kind != core.ErrOracle {
		t.Errorf("failure does not carry the oracle SimError: %v", f.Err)
	}
	if f.Diagnostic == "" || !strings.Contains(f.Diagnostic, "last") {
		t.Errorf("diagnostic bundle missing or truncated: %q", f.Diagnostic)
	}

	table := r.FailureTable()
	for _, want := range []string{"hmmer", "dmdp", "oracle"} {
		if !strings.Contains(table, want) {
			t.Errorf("failure table missing %q:\n%s", want, table)
		}
	}
}

// The negative cache must return the same failure without re-simulating
// (and without consuming another retry) and must not duplicate the
// failure record.
func TestFailureNegativelyCached(t *testing.T) {
	r := poisonedRunner(t)
	sims := r.sims.Load()
	_, err1 := r.RunModel("hmmer", config.DMDP)
	_, err2 := r.RunModel("hmmer", config.DMDP)
	if err1 == nil || err2 == nil {
		t.Fatal("cached failure must keep failing")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("cached failure changed: %v vs %v", err1, err2)
	}
	if got := r.sims.Load(); got != sims {
		t.Fatalf("cached failure re-simulated: %d runs, had %d", got, sims)
	}
	if n := len(r.Failures()); n != 1 {
		t.Fatalf("failure recorded %d times, want 1", n)
	}
}

// Prefetch records failures and keeps warming the rest of the suite,
// surfacing an aggregate error count instead of aborting on the first
// broken run.
func TestPrefetchTolerantOfFailures(t *testing.T) {
	r := poisonedRunner(t)
	err := r.Prefetch()
	if err == nil {
		t.Fatal("prefetch over a failing run must surface an aggregate error")
	}
	if !strings.Contains(err.Error(), "1 of") {
		t.Fatalf("aggregate error lacks the failure count: %v", err)
	}
	if len(r.Failures()) != 1 {
		t.Fatalf("failures after prefetch: %+v", r.Failures())
	}
	// The healthy benchmark's default runs are all warm and usable.
	if _, err := r.RunModel("bzip2", config.DMDP); err != nil {
		t.Fatalf("healthy benchmark unusable after prefetch: %v", err)
	}
}

// A panicking simulation is converted into a recorded failure with a
// trimmed stack, not a crashed suite.
func TestPanicConvertedToFailure(t *testing.T) {
	r := NewRunner(Options{
		Budget:     4000,
		Benchmarks: []string{"hmmer"},
		Parallel:   false,
	})
	// An invalid configuration that slips past Validate: a zero-size
	// T-SSBF makes the core's modulo indexing panic.
	cfg := config.Default(config.DMDP)
	cfg.TSSBF.Sets = 0
	_, err := r.Run("hmmer", cfg, "dmdp-broken")
	if err == nil {
		t.Skip("configuration no longer panics; pick another panic source")
	}
	fs := r.Failures()
	if len(fs) != 1 {
		t.Fatalf("%d failures, want 1", len(fs))
	}
	if !fs[0].Panicked {
		t.Errorf("panic not flagged: %+v", fs[0])
	}
	if !strings.Contains(fs[0].Err.Error(), "panic:") {
		t.Errorf("error does not carry the panic: %v", fs[0].Err)
	}
}
