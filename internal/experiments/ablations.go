package experiments

import (
	"fmt"
	"strings"

	"dmdp/internal/config"
	"dmdp/internal/stats"
)

// The ablation experiments isolate design choices the paper discusses:
// the silent-store-aware predictor update policy (§VI-a calls it a
// double-edged sword and compares both settings on hmmer), the biased
// confidence update (§IV-E), store coalescing (§V), the TAGE-like store
// distance predictor (related work, §VII) and remote-core invalidation
// traffic (§IV-F).

// AblSilentPolicyRuns declares the silent-store ablation's simulations.
func AblSilentPolicyRuns(r *Runner) []RunSpec {
	return r.suite(
		RunSpec{Cfg: config.Default(config.NoSQ), Label: "nosq"},
		RunSpec{Cfg: config.Default(config.NoSQ).WithSilentStorePolicy(false), Label: "nosq-nosilent"},
	)
}

// AblSilentPolicy compares NoSQ with and without the silent-store-aware
// update. The paper: disabling it helps hmmer (fewer mispredictions) but
// hurts the other benchmarks (more re-executions).
func AblSilentPolicy(r *Runner) (string, error) {
	t := stats.NewTable("Ablation: silent-store-aware predictor update (NoSQ)",
		"bench", "aware IPC", "original IPC", "aware MPKI", "orig MPKI", "aware reexec/1k", "orig reexec/1k")
	var ratios []float64
	for _, b := range r.Benchmarks() {
		on, err := r.Run(b, config.Default(config.NoSQ), "nosq")
		if err != nil {
			continue // failure recorded; row omitted
		}
		off, err := r.Run(b, config.Default(config.NoSQ).WithSilentStorePolicy(false), "nosq-nosilent")
		if err != nil {
			continue // failure recorded; row omitted
		}
		ratios = append(ratios, on.IPC()/off.IPC())
		t.AddF(2, b, on.IPC(), off.IPC(), on.MPKI(), off.MPKI(),
			on.ReexecStallsPerKilo(), off.ReexecStallsPerKilo())
	}
	out := t.String()
	out += fmt.Sprintf("geomean aware/original: %s (paper: aware wins overall, loses on hmmer)\n",
		stats.Pct(stats.Geomean(ratios)))
	return out, nil
}

// AblBiasedConfidenceRuns declares the confidence ablation's simulations.
func AblBiasedConfidenceRuns(r *Runner) []RunSpec {
	balancedCfg := config.Default(config.DMDP)
	balancedCfg.SDP.Biased = false
	return r.suite(
		RunSpec{Cfg: config.Default(config.DMDP), Label: "dmdp"},
		RunSpec{Cfg: balancedCfg, Label: "dmdp-balanced"},
	)
}

// AblBiasedConfidence compares DMDP with the biased (divide-by-two)
// confidence update against a balanced (-1) variant: the bias trades
// extra predications for fewer full-penalty mispredictions (§IV-E).
func AblBiasedConfidence(r *Runner) (string, error) {
	t := stats.NewTable("Ablation: biased vs balanced confidence update (DMDP)",
		"bench", "biased IPC", "balanced IPC", "biased MPKI", "bal MPKI", "biased pred#", "bal pred#")
	var ratios []float64
	balancedCfg := config.Default(config.DMDP)
	balancedCfg.SDP.Biased = false
	for _, b := range r.Benchmarks() {
		bi, err := r.Run(b, config.Default(config.DMDP), "dmdp")
		if err != nil {
			continue // failure recorded; row omitted
		}
		ba, err := r.Run(b, balancedCfg, "dmdp-balanced")
		if err != nil {
			continue // failure recorded; row omitted
		}
		ratios = append(ratios, bi.IPC()/ba.IPC())
		t.AddF(2, b, bi.IPC(), ba.IPC(), bi.MPKI(), ba.MPKI(), bi.Predications, ba.Predications)
	}
	out := t.String()
	out += fmt.Sprintf("geomean biased/balanced: %s (paper: fewer mispredictions at the cost of more predications)\n",
		stats.Pct(stats.Geomean(ratios)))
	return out, nil
}

// AblTAGERuns declares the TAGE ablation's simulations.
func AblTAGERuns(r *Runner) []RunSpec {
	return r.suite(
		RunSpec{Cfg: config.Default(config.DMDP), Label: "dmdp"},
		RunSpec{Cfg: config.Default(config.DMDP).WithTAGE(true), Label: "dmdp-tage"},
		RunSpec{Cfg: config.Default(config.NoSQ), Label: "nosq"},
		RunSpec{Cfg: config.Default(config.NoSQ).WithTAGE(true), Label: "nosq-tage"},
	)
}

// AblTAGE swaps the two-table Store Distance Predictor for the TAGE-like
// predictor on both SQ-free models (the related-work extension, §VII).
func AblTAGE(r *Runner) (string, error) {
	t := stats.NewTable("Ablation: TAGE-like store distance predictor",
		"bench", "dmdp", "dmdp+tage", "nosq", "nosq+tage")
	var dr, nr []float64
	for _, b := range r.Benchmarks() {
		d, err := r.Run(b, config.Default(config.DMDP), "dmdp")
		if err != nil {
			continue // failure recorded; row omitted
		}
		dt, err := r.Run(b, config.Default(config.DMDP).WithTAGE(true), "dmdp-tage")
		if err != nil {
			continue // failure recorded; row omitted
		}
		n, err := r.Run(b, config.Default(config.NoSQ), "nosq")
		if err != nil {
			continue // failure recorded; row omitted
		}
		nt, err := r.Run(b, config.Default(config.NoSQ).WithTAGE(true), "nosq-tage")
		if err != nil {
			continue // failure recorded; row omitted
		}
		dr = append(dr, dt.IPC()/d.IPC())
		nr = append(nr, nt.IPC()/n.IPC())
		t.AddF(3, b, d.IPC(), dt.IPC(), n.IPC(), nt.IPC())
	}
	out := t.String()
	out += fmt.Sprintf("geomean tage/classic: dmdp %s, nosq %s\n",
		stats.Pct(stats.Geomean(dr)), stats.Pct(stats.Geomean(nr)))
	return out, nil
}

// AblCoalescingRuns declares the coalescing ablation's simulations.
func AblCoalescingRuns(r *Runner) []RunSpec {
	return r.suite(
		RunSpec{Cfg: config.Default(config.DMDP), Label: "dmdp"},
		RunSpec{Cfg: config.Default(config.DMDP).WithCoalescing(false), Label: "dmdp-nocoalesce"},
	)
}

// AblCoalescing disables TSO store coalescing: consecutive same-word
// stores then occupy the commit port individually (§V mentions
// coalescing alleviates write-port pressure).
func AblCoalescing(r *Runner) (string, error) {
	t := stats.NewTable("Ablation: store coalescing (DMDP)",
		"bench", "on IPC", "off IPC", "coalesced#", "sbstall-on/1k", "sbstall-off/1k")
	var ratios []float64
	for _, b := range r.Benchmarks() {
		on, err := r.Run(b, config.Default(config.DMDP), "dmdp")
		if err != nil {
			continue // failure recorded; row omitted
		}
		off, err := r.Run(b, config.Default(config.DMDP).WithCoalescing(false), "dmdp-nocoalesce")
		if err != nil {
			continue // failure recorded; row omitted
		}
		ratios = append(ratios, on.IPC()/off.IPC())
		t.AddF(2, b, on.IPC(), off.IPC(), on.StoresCoalesced,
			on.SBStallsPerKilo(), off.SBStallsPerKilo())
	}
	out := t.String()
	out += fmt.Sprintf("geomean on/off: %s\n", stats.Pct(stats.Geomean(ratios)))
	return out, nil
}

// AblInvalidationsRuns declares the invalidation ablation's simulations.
func AblInvalidationsRuns(r *Runner) []RunSpec {
	return r.suite(
		RunSpec{Cfg: config.Default(config.DMDP), Label: "dmdp"},
		RunSpec{Cfg: config.Default(config.DMDP).WithInvalidations(ablInvalInterval), Label: "dmdp-inval"},
	)
}

// AblInvalidations injects remote-core cache line invalidations (§IV-F):
// invalidated words enter the T-SSBF with SSNcommit+1, forcing vulnerable
// in-flight loads to re-execute. DMDP and NoSQ both absorb the traffic
// without correctness loss; the cost is extra re-executions.
func AblInvalidations(r *Runner) (string, error) {
	const interval = ablInvalInterval
	t := stats.NewTable(fmt.Sprintf("Ablation: remote invalidations every %d cycles (DMDP)", interval),
		"bench", "quiet IPC", "noisy IPC", "invals", "reexec-quiet", "reexec-noisy")
	var ratios []float64
	for _, b := range r.Benchmarks() {
		q, err := r.Run(b, config.Default(config.DMDP), "dmdp")
		if err != nil {
			continue // failure recorded; row omitted
		}
		n, err := r.Run(b, config.Default(config.DMDP).WithInvalidations(interval), "dmdp-inval")
		if err != nil {
			continue // failure recorded; row omitted
		}
		ratios = append(ratios, n.IPC()/q.IPC())
		t.AddF(2, b, q.IPC(), n.IPC(), n.Invalidations, q.Reexecs, n.Reexecs)
	}
	var out strings.Builder
	out.WriteString(t.String())
	fmt.Fprintf(&out, "geomean noisy/quiet: %s (consistency traffic costs re-executions, never correctness)\n",
		stats.Pct(stats.Geomean(ratios)))
	return out.String(), nil
}

// ablInvalInterval is the injected invalidation period (cycles) shared
// by AblInvalidations and its Runs declaration.
const ablInvalInterval = 2000

// AblPrefetchRuns declares the prefetcher ablation's simulations.
func AblPrefetchRuns(r *Runner) []RunSpec {
	return r.suite(
		RunSpec{Cfg: config.Default(config.DMDP), Label: "dmdp"},
		RunSpec{Cfg: config.Default(config.DMDP).WithPrefetch(true), Label: "dmdp-prefetch"},
	)
}

// AblPrefetch measures the interaction between a next-line L1 prefetcher
// and the store-load communication models: prefetching compresses the
// direct-load latency, which shrinks the absolute gap the SQ-free
// mechanisms can win back on streaming code.
func AblPrefetch(r *Runner) (string, error) {
	t := stats.NewTable("Ablation: next-line L1 prefetcher (DMDP)",
		"bench", "off IPC", "on IPC", "gain", "L1 miss off", "L1 miss on")
	var ratios []float64
	for _, b := range r.Benchmarks() {
		off, err := r.Run(b, config.Default(config.DMDP), "dmdp")
		if err != nil {
			continue // failure recorded; row omitted
		}
		on, err := r.Run(b, config.Default(config.DMDP).WithPrefetch(true), "dmdp-prefetch")
		if err != nil {
			continue // failure recorded; row omitted
		}
		ratios = append(ratios, on.IPC()/off.IPC())
		t.AddF(3, b, off.IPC(), on.IPC(), stats.Pct(on.IPC()/off.IPC()),
			stats.F(100*off.L1MissRate, 1), stats.F(100*on.L1MissRate, 1))
	}
	out := t.String()
	out += fmt.Sprintf("geomean on/off: %s\n", stats.Pct(stats.Geomean(ratios)))
	return out, nil
}
