package experiments

import (
	"fmt"
	"strings"

	"dmdp/internal/config"
	"dmdp/internal/stats"
)

// TableIVRuns declares Table IV's simulations: Baseline and DMDP.
func TableIVRuns(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.Baseline), modelSpec(config.DMDP))
}

// TableIV reproduces Table IV: average execution time (cycles between
// rename and the result becoming available) of all loads, baseline vs
// DMDP. The paper saves >20% on average, with wrf and bzip2 halved.
func TableIV(r *Runner) (string, error) {
	t := stats.NewTable("Table IV: average execution time of all loads (cycles)",
		"bench", "baseline", "dmdp", "saving")
	var base, dm []float64
	for _, b := range r.Benchmarks() {
		sb, err := r.RunModel(b, config.Baseline)
		if err != nil {
			continue // failure recorded; row omitted
		}
		sd, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		tb, td := sb.MeanLoadExecTime(), sd.MeanLoadExecTime()
		base = append(base, tb)
		dm = append(dm, td)
		saving := "-"
		if tb > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*(tb-td)/tb)
		}
		t.AddF(2, b, tb, td, saving)
	}
	out := t.String()
	mb, md := stats.Mean(base), stats.Mean(dm)
	out += fmt.Sprintf("average: baseline %.2f, dmdp %.2f (paper: 39.31 vs 31.15; saving >20%%)\n", mb, md)
	return out, nil
}

// TableVRuns declares Table V's simulations: NoSQ and DMDP.
func TableVRuns(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.NoSQ), modelSpec(config.DMDP))
}

// TableV reproduces Table V: average execution time of the
// low-confidence loads, NoSQ (delayed) vs DMDP (predicated). The paper
// saves 54.48% on average, up to 79.25%, with lib the lone inversion.
func TableV(r *Runner) (string, error) {
	t := stats.NewTable("Table V: average execution time of low-confidence loads (cycles)",
		"bench", "nosq", "dmdp", "saving", "nosq#", "dmdp#")
	var savings []float64
	for _, b := range r.Benchmarks() {
		sn, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		sd, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		tn, td := sn.MeanLowConfExecTime(), sd.MeanLowConfExecTime()
		saving := "-"
		if tn > 0 && td > 0 && sn.LowConfCount > 20 && sd.LowConfCount > 20 {
			s := 100 * (tn - td) / tn
			savings = append(savings, s)
			saving = fmt.Sprintf("%.1f%%", s)
		}
		t.AddF(2, b, tn, td, saving, sn.LowConfCount, sd.LowConfCount)
	}
	out := t.String()
	if len(savings) > 0 {
		out += fmt.Sprintf("mean saving: %.1f%% (paper: 54.48%%, max 79.25%%)\n", stats.Mean(savings))
	}
	return out, nil
}

// TableVIRuns declares Table VI's simulations: NoSQ and DMDP.
func TableVIRuns(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.NoSQ), modelSpec(config.DMDP))
}

// TableVI reproduces Table VI: memory dependence mispredictions per 1k
// instructions. DMDP generally has fewer than NoSQ (biased confidence)
// except where distances churn (bzip2).
func TableVI(r *Runner) (string, error) {
	t := stats.NewTable("Table VI: memory dependence mispredictions (MPKI)",
		"bench", "nosq", "dmdp")
	var n, d []float64
	for _, b := range r.Benchmarks() {
		sn, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		sd, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		n = append(n, sn.MPKI())
		d = append(d, sd.MPKI())
		t.AddF(3, b, sn.MPKI(), sd.MPKI())
	}
	out := t.String()
	out += fmt.Sprintf("mean MPKI: nosq %.2f, dmdp %.2f (paper: hmmer 3.06 vs 1.03; bzip2 inverted)\n",
		stats.Mean(n), stats.Mean(d))
	return out, nil
}

// TableVIIRuns declares Table VII's simulations: NoSQ and DMDP.
func TableVIIRuns(r *Runner) []RunSpec {
	return r.suite(modelSpec(config.NoSQ), modelSpec(config.DMDP))
}

// TableVII reproduces Table VII: retire-stall cycles from load
// re-execution per 1k committed instructions. DMDP stalls more than NoSQ
// (its loads execute earlier, widening the vulnerability window); lbm is
// the worst case.
func TableVII(r *Runner) (string, error) {
	t := stats.NewTable("Table VII: re-execution stall cycles per 1k instructions",
		"bench", "nosq", "dmdp", "reexecs(nosq)", "reexecs(dmdp)")
	var n, d []float64
	for _, b := range r.Benchmarks() {
		sn, err := r.RunModel(b, config.NoSQ)
		if err != nil {
			continue // failure recorded; row omitted
		}
		sd, err := r.RunModel(b, config.DMDP)
		if err != nil {
			continue // failure recorded; row omitted
		}
		n = append(n, sn.ReexecStallsPerKilo())
		d = append(d, sd.ReexecStallsPerKilo())
		t.AddF(2, b, sn.ReexecStallsPerKilo(), sd.ReexecStallsPerKilo(),
			sn.Reexecs, sd.Reexecs)
	}
	out := t.String()
	out += fmt.Sprintf("mean stalls/1k: nosq %.1f, dmdp %.1f (paper: DMDP higher everywhere, lbm worst)\n",
		stats.Mean(n), stats.Mean(d))
	return out, nil
}

// relGeomeans runs DMDP and NoSQ under cfgOf and reports DMDP-over-NoSQ
// geomeans for both suites.
func (r *Runner) relGeomeans(label string, cfgOf func(config.Model) config.Config) (string, error) {
	byClass := map[string][]float64{"Int": {}, "FP": {}}
	t := stats.NewTable("", "bench", "dmdp/nosq")
	for _, b := range r.Benchmarks() {
		sn, err := r.Run(b, cfgOf(config.NoSQ), "nosq-"+label)
		if err != nil {
			continue // failure recorded; row omitted
		}
		sd, err := r.Run(b, cfgOf(config.DMDP), "dmdp-"+label)
		if err != nil {
			continue // failure recorded; row omitted
		}
		rel := sd.IPC() / sn.IPC()
		cls := "Int"
		if isFP(r, b) {
			cls = "FP"
		}
		byClass[cls] = append(byClass[cls], rel)
		t.AddF(3, b, rel)
	}
	var out strings.Builder
	out.WriteString(t.String())
	for _, cls := range []string{"Int", "FP"} {
		if len(byClass[cls]) == 0 {
			continue
		}
		fmt.Fprintf(&out, "%s geomean dmdp over nosq: %s\n", cls, stats.Pct(stats.Geomean(byClass[cls])))
	}
	return out.String(), nil
}

// altRuns builds the Runs declaration for a relGeomeans alternative:
// NoSQ and DMDP under the transformed configuration, on every proxy.
func altRuns(label string, cfgOf func(config.Model) config.Config) func(*Runner) []RunSpec {
	return func(r *Runner) []RunSpec {
		return r.suite(
			RunSpec{Cfg: cfgOf(config.NoSQ), Label: "nosq-" + label},
			RunSpec{Cfg: cfgOf(config.DMDP), Label: "dmdp-" + label},
		)
	}
}

// AltIssue4Runs declares the 4-issue alternative's simulations.
var AltIssue4Runs = altRuns("4w", func(m config.Model) config.Config {
	return config.Default(m).WithIssueWidth(4)
})

// AltIssue4 reproduces the 4-issue alternative (§VI-g): the DMDP-over-NoSQ
// gain shrinks (paper: +4.56% Int, +2.41% FP).
func AltIssue4(r *Runner) (string, error) {
	out, err := r.relGeomeans("4w", func(m config.Model) config.Config {
		return config.Default(m).WithIssueWidth(4)
	})
	if err != nil {
		return "", err
	}
	return "Alt: 4-issue width (paper: +4.56% Int, +2.41% FP)\n" + out, nil
}

// AltROB512Runs declares the 512-entry ROB alternative's simulations.
var AltROB512Runs = altRuns("rob512", func(m config.Model) config.Config {
	return config.Default(m).WithROB(512)
})

// AltROB512 reproduces the 512-entry ROB alternative (§VI-g): the gain
// grows (paper: +7.56% Int, +6.35% FP).
func AltROB512(r *Runner) (string, error) {
	out, err := r.relGeomeans("rob512", func(m config.Model) config.Config {
		return config.Default(m).WithROB(512)
	})
	if err != nil {
		return "", err
	}
	return "Alt: 512-entry ROB (paper: +7.56% Int, +6.35% FP)\n" + out, nil
}

// AltRMORuns declares the RMO alternative's simulations.
var AltRMORuns = altRuns("rmo", func(m config.Model) config.Config {
	return config.Default(m).WithConsistency(config.RMO)
})

// AltRMO reproduces the relaxed memory order alternative (§VI-g): gains
// similar to TSO (paper: +7.67% Int, +4.08% FP).
func AltRMO(r *Runner) (string, error) {
	out, err := r.relGeomeans("rmo", func(m config.Model) config.Config {
		return config.Default(m).WithConsistency(config.RMO)
	})
	if err != nil {
		return "", err
	}
	return "Alt: RMO consistency (paper: +7.67% Int, +4.08% FP)\n" + out, nil
}

// AltPRF160Runs declares the register-file-pressure simulations:
// Baseline and DMDP at 320 and 160 physical registers. (The 320-register
// points are the default machines, so the digest cache folds them into
// the shared "baseline"/"dmdp" runs.)
func AltPRF160Runs(r *Runner) []RunSpec {
	var specs []RunSpec
	for _, prf := range []int{320, 160} {
		specs = append(specs,
			RunSpec{Cfg: config.Default(config.Baseline).WithPhysRegs(prf), Label: fmt.Sprintf("baseline-prf%d", prf)},
			RunSpec{Cfg: config.Default(config.DMDP).WithPhysRegs(prf), Label: fmt.Sprintf("dmdp-prf%d", prf)},
		)
	}
	return r.suite(specs...)
}

// AltPRF160 reproduces the register file pressure experiment (§VI-f):
// halving the physical register file (320 -> 160) shrinks DMDP's gain
// over the baseline (paper: 4.94% -> 4.24%).
func AltPRF160(r *Runner) (string, error) {
	gain := func(prf int) float64 {
		var rels []float64
		for _, b := range r.Benchmarks() {
			cb := config.Default(config.Baseline).WithPhysRegs(prf)
			cd := config.Default(config.DMDP).WithPhysRegs(prf)
			sb, err := r.Run(b, cb, fmt.Sprintf("baseline-prf%d", prf))
			if err != nil {
				continue // failure recorded; benchmark omitted
			}
			sd, err := r.Run(b, cd, fmt.Sprintf("dmdp-prf%d", prf))
			if err != nil {
				continue
			}
			rels = append(rels, sd.IPC()/sb.IPC())
		}
		return stats.Geomean(rels)
	}
	g320 := gain(320)
	g160 := gain(160)
	return fmt.Sprintf("Alt: register file pressure\n"+
		"dmdp over baseline, 320 regs: %s\n"+
		"dmdp over baseline, 160 regs: %s\n"+
		"paper: +4.94%% -> +4.24%% (gain shrinks when the PRF halves)\n",
		stats.Pct(g320), stats.Pct(g160)), nil
}
