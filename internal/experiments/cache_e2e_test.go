package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/workload"
)

const (
	e2eBudget = 4000
)

var e2eBenches = []string{"perl", "hmmer", "milc", "wrf"}

// renderSuite renders every experiment through a fresh runner backed by
// the given store and returns per-experiment output plus the failure
// table — exactly what cmd/experiments prints to stdout.
func renderSuite(t *testing.T, store *artifact.Store) (map[string]string, string, *Runner) {
	t.Helper()
	r := NewRunner(Options{
		Budget:     e2eBudget,
		Benchmarks: e2eBenches,
		Parallel:   false,
		Cache:      store,
	})
	if err := r.WarmUp(All()...); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	out := make(map[string]string, len(All()))
	for _, e := range All() {
		s, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out[e.ID] = s
	}
	return out, r.FailureTable(), r
}

func openStore(t *testing.T, dir string, mode artifact.Mode) *artifact.Store {
	t.Helper()
	s, err := artifact.Open(dir, mode, artifact.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func diffSuites(t *testing.T, what string, want, got map[string]string) {
	t.Helper()
	for _, e := range All() {
		if want[e.ID] != got[e.ID] {
			t.Errorf("%s: %s output differs\n--- want ---\n%s\n--- got ---\n%s",
				e.ID, what, want[e.ID], got[e.ID])
		}
	}
}

// TestSuiteByteIdenticalAcrossCacheModes is the acceptance oracle for
// the artifact cache: the rendered suite must be byte-identical with
// the cache off, on a cold read-write cache, on the warm cache it just
// populated, and in verify mode over the same warm cache. The warm run
// must come entirely from the result store (zero simulations).
func TestSuiteByteIdenticalAcrossCacheModes(t *testing.T) {
	off, offFail, _ := renderSuite(t, nil)

	dir := t.TempDir()
	cold, coldFail, _ := renderSuite(t, openStore(t, dir, artifact.RW))
	diffSuites(t, "cold-cache", off, cold)
	if offFail != coldFail {
		t.Errorf("failure table differs off vs cold:\n%s\n---\n%s", offFail, coldFail)
	}

	warmStore := openStore(t, dir, artifact.RW)
	warm, warmFail, warmRunner := renderSuite(t, warmStore)
	diffSuites(t, "warm-cache", off, warm)
	if offFail != warmFail {
		t.Errorf("failure table differs off vs warm:\n%s\n---\n%s", offFail, warmFail)
	}
	if n := warmRunner.sims.Load(); n != 0 {
		t.Errorf("warm run simulated %d times; every result should hit the store", n)
	}
	c := warmStore.Counters()
	if c.ResultHits == 0 || c.ResultMisses != 0 {
		t.Errorf("warm counters: hits=%d misses=%d; want all hits", c.ResultHits, c.ResultMisses)
	}

	verify, verifyFail, _ := renderSuite(t, openStore(t, dir, artifact.Verify))
	diffSuites(t, "verify-mode", off, verify)
	if offFail != verifyFail {
		t.Errorf("failure table differs off vs verify:\n%s\n---\n%s", offFail, verifyFail)
	}
}

// TestCorruptCacheDegradesToMisses truncates every entry of a warm
// cache and re-renders: corruption must read as misses (entries dropped
// and rewritten), never as wrong results or a failed run.
func TestCorruptCacheDegradesToMisses(t *testing.T) {
	dir := t.TempDir()
	want, wantFail, _ := renderSuite(t, openStore(t, dir, artifact.RW))

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("cold run populated nothing")
	}
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(p, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
	}

	store := openStore(t, dir, artifact.RW)
	got, gotFail, _ := renderSuite(t, store)
	diffSuites(t, "post-corruption", want, got)
	if wantFail != gotFail {
		t.Errorf("failure table differs after corruption:\n%s\n---\n%s", wantFail, gotFail)
	}
	c := store.Counters()
	if c.CorruptDropped == 0 {
		t.Error("no corrupt entries dropped; truncation was not detected")
	}
	if c.ResultHits != 0 || c.TraceHits != 0 {
		t.Errorf("truncated entries hit: trace=%d result=%d", c.TraceHits, c.ResultHits)
	}
}

// TestVerifyDetectsPoisonedResult overwrites one result entry with a
// well-formed encoding of the wrong stats (valid CRC, valid schema —
// only the payload lies) and requires -cache verify to fail that run
// with a structured *artifact.VerifyError naming the first differing
// field, while plain warm mode would have trusted it.
func TestVerifyDetectsPoisonedResult(t *testing.T) {
	dir := t.TempDir()
	rw := openStore(t, dir, artifact.RW)
	r := NewRunner(Options{Budget: e2eBudget, Benchmarks: e2eBenches, Cache: rw})
	honest, err := r.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}

	spec, ok := workload.Get("perl")
	if !ok {
		t.Fatal("perl workload missing")
	}
	cfg := config.Default(config.DMDP)
	key := artifact.ResultKey(
		artifact.TraceKey(spec.SourceHash(), e2eBudget), cfg.Digest(), e2eBudget)
	poisoned := *honest
	poisoned.Cycles += 1_000_000
	rw.StoreStats(key, &poisoned)

	// A plain warm run trusts the poison — that is the gap verify closes.
	trusting := NewRunner(Options{Budget: e2eBudget, Benchmarks: e2eBenches,
		Cache: openStore(t, dir, artifact.RW)})
	st, err := trusting.RunModel("perl", config.DMDP)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != poisoned.Cycles {
		t.Fatalf("expected the warm run to return the poisoned entry, got cycles=%d", st.Cycles)
	}

	vr := NewRunner(Options{Budget: e2eBudget, Benchmarks: e2eBenches,
		Cache: openStore(t, dir, artifact.Verify)})
	_, err = vr.RunModel("perl", config.DMDP)
	if err == nil {
		t.Fatal("verify mode accepted a poisoned result entry")
	}
	var verr *artifact.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("want *artifact.VerifyError, got %T: %v", err, err)
	}
	if verr.Bench != "perl" || verr.Key != key {
		t.Errorf("verify error misattributed: %+v", verr)
	}
	fails := vr.Failures()
	if len(fails) != 1 || fails[0].Diagnostic == "" {
		t.Errorf("verify failure not recorded with a diagnostic: %+v", fails)
	}
}
