package warm

import (
	"bytes"
	"testing"

	"dmdp/internal/bpred"
	"dmdp/internal/cache"
	"dmdp/internal/config"
	"dmdp/internal/memdep"
	"dmdp/internal/tlb"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

func testTrace(t testing.TB, bench string, budget int64) *trace.Trace {
	t.Helper()
	s, ok := workload.Get(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	tr, err := s.BuildTrace(budget)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testConfig() Config { return ConfigFrom(config.Default(config.DMDP)) }

func warmOver(cfg Config, entries []trace.Entry) *State {
	s := New(cfg)
	for i := range entries {
		s.Update(&entries[i])
	}
	return s
}

// A snapshot must decode back into a state that re-encodes to the same
// bytes: the canonical encoding is a fixed point of serialize-load.
func TestSnapshotRoundTrip(t *testing.T) {
	tr := testTrace(t, "gcc", 200_000)
	for _, tage := range []bool{false, true} {
		cfg := testConfig()
		cfg.UseTAGE = tage
		s := warmOver(cfg, tr.Entries)
		snap := s.Snapshot()
		s2, err := FromSnapshot(cfg, snap)
		if err != nil {
			t.Fatalf("tage=%t: FromSnapshot: %v", tage, err)
		}
		if !bytes.Equal(snap, s2.Snapshot()) {
			t.Fatalf("tage=%t: snapshot not a serialize-load fixed point", tage)
		}
		if s2.Stores != s.Stores {
			t.Fatalf("tage=%t: stores %d != %d", tage, s2.Stores, s.Stores)
		}
	}
}

// Warming continuously over a whole trace must equal warming a prefix,
// snapshotting, restoring, and continuing — the property that makes a
// boundary snapshot interchangeable with the live pass, and therefore
// the streamed and materialized paths byte-identical.
func TestContinuousEqualsRestoreContinue(t *testing.T) {
	tr := testTrace(t, "gcc", 200_000)
	cfg := testConfig()
	half := len(tr.Entries) / 2

	cont := warmOver(cfg, tr.Entries)

	prefix := warmOver(cfg, tr.Entries[:half])
	resumed, err := FromSnapshot(cfg, prefix.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(tr.Entries); i++ {
		resumed.Update(&tr.Entries[i])
	}
	if !bytes.Equal(cont.Snapshot(), resumed.Snapshot()) {
		t.Fatal("continuous warming diverged from snapshot-restore-continue")
	}
}

// Structural corruption must surface as an error, never as silently
// wrong state or a panic.
func TestCorruptSnapshotRejected(t *testing.T) {
	tr := testTrace(t, "gcc", 50_000)
	cfg := testConfig()
	snap := warmOver(cfg, tr.Entries).Snapshot()

	if _, err := FromSnapshot(cfg, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	for _, cut := range []int{1, 8, snapHeader, len(snap) / 2, len(snap) - 1} {
		if _, err := FromSnapshot(cfg, snap[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	bad := append([]byte(nil), snap...)
	bad[0] ^= 0xff // magic
	if _, err := FromSnapshot(cfg, bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := FromSnapshot(cfg, append(append([]byte(nil), snap...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	other := cfg
	other.UseTAGE = true
	if _, err := FromSnapshot(other, snap); err == nil {
		t.Fatal("SDP snapshot accepted by TAGE configuration")
	}
	// Set-count corruption inside a section must be caught by the
	// substrate validators without panicking.
	for i := snapHeader + 4; i < len(snap); i += 97 {
		mut := append([]byte(nil), snap...)
		mut[i] = 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated byte %d: %v", i, r)
				}
			}()
			st, err := FromSnapshot(cfg, mut)
			// Accepted mutations must still re-encode consistently.
			if err == nil {
				_ = st.Snapshot()
			}
		}()
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	tr := testTrace(t, "gcc", 100_000)
	cfg := testConfig()
	third := len(tr.Entries) / 3

	s := warmOver(cfg, tr.Entries[:third])
	base := s.Snapshot()
	for i := third; i < len(tr.Entries); i++ {
		s.Update(&tr.Entries[i])
	}
	full := s.Snapshot()

	delta := EncodeDelta(base, full)
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("delta round trip mismatch")
	}
	if len(delta) >= len(full) {
		t.Logf("note: delta (%d B) not smaller than full (%d B)", len(delta), len(full))
	}

	// Length-changing cases: empty base forces all-literal; shrinking
	// full exercises the short final block.
	for _, b := range [][]byte{nil, base[:len(base)/2], full} {
		d := EncodeDelta(b, full)
		got, err := ApplyDelta(b, d)
		if err != nil || !bytes.Equal(got, full) {
			t.Fatalf("round trip against %d-byte base failed: %v", len(b), err)
		}
	}
	d := EncodeDelta(full, base)
	if got, err := ApplyDelta(full, d); err != nil || !bytes.Equal(got, base) {
		t.Fatalf("shrinking round trip failed: %v", err)
	}

	// Corruption never panics and is usually an error; a flipped
	// literal byte is indistinguishable by design (the artifact layer's
	// CRC catches it).
	for i := 0; i < len(delta); i += 13 {
		mut := append([]byte(nil), delta...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated delta byte %d: %v", i, r)
				}
			}()
			_, _ = ApplyDelta(base, mut)
		}()
	}
	if _, err := ApplyDelta(base, delta[:4]); err == nil {
		t.Fatal("truncated delta header accepted")
	}
	if _, err := ApplyDelta(base, delta[:len(delta)-1]); err == nil {
		t.Fatal("truncated delta accepted")
	}
	if _, err := ApplyDelta(nil, delta); err == nil {
		t.Fatal("delta against missing base accepted")
	}
}

// Installing into fresh detailed substrates is an exact transplant: the
// installed structures re-encode to the warm state's own sections, and
// the T-SSBF answers with true store distances after rebasing.
func TestInstallInto(t *testing.T) {
	tr := testTrace(t, "gcc", 100_000)
	full := config.Default(config.DMDP)
	cfg := ConfigFrom(full)
	s := warmOver(cfg, tr.Entries)

	h := cache.NewHierarchy(full.Hierarchy)
	tl := tlb.New(full.TLB)
	bp := bpred.New(full.BPred)
	sdp := memdep.NewSDP(full.SDP)
	tssbf := memdep.NewTSSBF(full.TSSBF)
	s.InstallInto(h, tl, bp, sdp, tssbf)

	if !bytes.Equal(h.L1D.AppendWarmState(nil), s.L1.AppendWarmState(nil)) {
		t.Fatal("installed L1 state differs")
	}
	if !bytes.Equal(h.L2.AppendWarmState(nil), s.L2.AppendWarmState(nil)) {
		t.Fatal("installed L2 state differs")
	}
	if !bytes.Equal(tl.AppendWarmState(nil), s.TLB.AppendWarmState(nil)) {
		t.Fatal("installed TLB state differs")
	}
	if !bytes.Equal(bp.AppendWarmState(nil), s.BP.AppendWarmState(nil)) {
		t.Fatal("installed branch predictor state differs")
	}
	if !bytes.Equal(sdp.AppendWarmState(nil), s.SDP.AppendWarmState(nil)) {
		t.Fatal("installed SDP state differs")
	}

	// Rebase: find a load whose word the warm T-SSBF still covers and
	// check the installed filter reports the same distance relative to
	// a zero-based SSN counter.
	checked := 0
	for i := len(tr.Entries) - 1; i >= 0 && checked < 16; i-- {
		e := &tr.Entries[i]
		if !e.IsLoad() {
			continue
		}
		ssn, tag, _ := s.TSSBF.LookupCovering(e.WordAddr(), e.BAB())
		if !tag {
			continue
		}
		got, gtag, _ := tssbf.LookupCovering(e.WordAddr(), e.BAB())
		if !gtag {
			t.Fatalf("installed T-SSBF lost coverage of %#x", e.WordAddr())
		}
		if want := ssn - s.Stores; got != want {
			t.Fatalf("installed T-SSBF ssn %d, want rebased %d", got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no covered loads found to check rebasing")
	}
}

// A TAGE configuration leaves the distance predictor cold but installs
// everything else.
func TestInstallIntoTAGE(t *testing.T) {
	tr := testTrace(t, "gcc", 50_000)
	full := config.Default(config.DMDP)
	full.UseTAGE = true
	cfg := ConfigFrom(full)
	s := warmOver(cfg, tr.Entries)
	if s.SDP != nil {
		t.Fatal("TAGE configuration built an SDP warm model")
	}
	h := cache.NewHierarchy(full.Hierarchy)
	tl := tlb.New(full.TLB)
	bp := bpred.New(full.BPred)
	tssbf := memdep.NewTSSBF(full.TSSBF)
	s.InstallInto(h, tl, bp, memdep.NewTAGESDP(memdep.DefaultTAGEConfig(true)), tssbf)
	if !bytes.Equal(h.L1D.AppendWarmState(nil), s.L1.AppendWarmState(nil)) {
		t.Fatal("installed L1 state differs under TAGE")
	}
}

func TestParamsHash(t *testing.T) {
	a := testConfig()
	b := testConfig()
	if a.ParamsHash() != b.ParamsHash() {
		t.Fatal("equal configs hash differently")
	}
	b.MaxDist++
	if a.ParamsHash() == b.ParamsHash() {
		t.Fatal("MaxDist change did not change the hash")
	}
	c := testConfig()
	c.Hierarchy.L2.Ways *= 2
	if a.ParamsHash() == c.ParamsHash() {
		t.Fatal("L2 geometry change did not change the hash")
	}
	d := testConfig()
	d.UseTAGE = true
	if a.ParamsHash() == d.ParamsHash() {
		t.Fatal("UseTAGE change did not change the hash")
	}
}
