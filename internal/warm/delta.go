package warm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Delta encoding between consecutive warm snapshots. Successive
// boundary snapshots share most of their bytes (tag state churns
// slowly relative to the snapshot cadence), so checkpointed warm state
// is persisted as block deltas against the previous snapshot with
// periodic keyframes. The codec is deliberately simple — fixed 64-byte
// blocks, one flag byte per block — so a corrupted delta fails loudly
// at Apply time rather than silently reconstructing garbage.

// deltaBlock is the diff granularity in bytes.
const deltaBlock = 64

const (
	blockSame    = 0 // block equals the base at the same offset
	blockLiteral = 1 // block bytes follow inline
)

// EncodeDelta encodes full as a delta against base. Blocks that extend
// past the end of the base (snapshots can change length when the store
// count's section grows) are emitted as literals.
func EncodeDelta(base, full []byte) []byte {
	out := make([]byte, 0, 8+len(full)/deltaBlock+deltaBlock)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(full)))
	for off := 0; off < len(full); off += deltaBlock {
		end := off + deltaBlock
		if end > len(full) {
			end = len(full)
		}
		if end <= len(base) && bytes.Equal(full[off:end], base[off:end]) {
			out = append(out, blockSame)
			continue
		}
		out = append(out, blockLiteral)
		out = append(out, full[off:end]...)
	}
	return out
}

// ApplyDelta reconstructs the full snapshot from base and a delta
// produced by EncodeDelta against that base. Any structural defect is
// an error.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	if len(delta) < 8 {
		return nil, fmt.Errorf("warm: delta truncated")
	}
	n := binary.LittleEndian.Uint64(delta)
	if n > 1<<31 {
		return nil, fmt.Errorf("warm: delta claims %d-byte snapshot", n)
	}
	full := make([]byte, 0, n)
	in := delta[8:]
	for int(n)-len(full) > 0 {
		want := int(n) - len(full)
		if want > deltaBlock {
			want = deltaBlock
		}
		if len(in) == 0 {
			return nil, fmt.Errorf("warm: delta truncated at offset %d", len(full))
		}
		flag := in[0]
		in = in[1:]
		switch flag {
		case blockSame:
			off := len(full)
			if off+want > len(base) {
				return nil, fmt.Errorf("warm: delta copies past end of base at offset %d", off)
			}
			full = append(full, base[off:off+want]...)
		case blockLiteral:
			if len(in) < want {
				return nil, fmt.Errorf("warm: delta literal truncated at offset %d", len(full))
			}
			full = append(full, in[:want]...)
			in = in[want:]
		default:
			return nil, fmt.Errorf("warm: delta has unknown block flag %d", flag)
		}
	}
	if len(in) != 0 {
		return nil, fmt.Errorf("warm: %d trailing delta bytes", len(in))
	}
	return full, nil
}
