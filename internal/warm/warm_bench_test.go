package warm

import (
	"testing"
)

// The warm hot loop must keep up with the emulator's streaming pass
// (tens of millions of entries per second) without allocating; the
// benchmark reports entries/sec and the guard below pins the zero-alloc
// property so a regression fails CI rather than silently halving the
// profiling pass's throughput.

func BenchmarkWarmUpdate(b *testing.B) {
	tr := testTrace(b, "gcc", 500_000)
	cfg := testConfig()
	s := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &tr.Entries[i%len(tr.Entries)]
		s.Update(e)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mentries/s")
}

func BenchmarkWarmSnapshot(b *testing.B) {
	tr := testTrace(b, "gcc", 500_000)
	s := warmOver(testConfig(), tr.Entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot()
	}
}

func BenchmarkWarmDelta(b *testing.B) {
	tr := testTrace(b, "gcc", 500_000)
	cfg := testConfig()
	half := len(tr.Entries) / 2
	base := warmOver(cfg, tr.Entries[:half]).Snapshot()
	full := warmOver(cfg, tr.Entries).Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeDelta(base, full)
	}
}

func TestUpdateDoesNotAllocate(t *testing.T) {
	tr := testTrace(t, "gcc", 100_000)
	s := New(testConfig())
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Update(&tr.Entries[i%len(tr.Entries)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Update allocates %.1f objects per entry; the hot loop must be allocation-free", allocs)
	}
}
