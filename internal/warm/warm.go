// Package warm implements SMARTS-style functional warming for
// checkpointed sampling: compact, timing-free models of the cache
// hierarchy, TLB, branch predictor and memory-dependence predictor tag
// state, updated continuously during the single streaming profiling
// pass and installed into the detailed models before each sampled
// interval. Without it, every interval starts with cold
// microarchitectural state and long-horizon effects — most visibly the
// L2-saturation regime change on streaming workloads — are invisible to
// the sample (the PR 7 cold-start artifact).
//
// The models are the real substrate implementations driven through
// functional entry points (tag-only state, no timing results), so the
// warmed state is installable by construction. The hot loop performs no
// allocation; see warm_bench_test.go for the throughput benchmark and
// the AllocsPerRun guard.
//
// Determinism: snapshots are canonical byte encodings (LRU structures
// are rank-normalized — only the relative recency order survives, which
// is exactly the part that determines future replacement decisions), so
// continuous warming, snapshot-restore-continue, and store round trips
// all yield byte-identical state for the same instruction prefix.
package warm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"dmdp/internal/bpred"
	"dmdp/internal/cache"
	"dmdp/internal/config"
	"dmdp/internal/memdep"
	"dmdp/internal/tlb"
	"dmdp/internal/trace"
)

// Version is the warm snapshot format/algorithm version; it joins the
// artifact key so format or policy changes invalidate stored warm state
// wholesale instead of decoding garbage.
const Version = 1

// Config is the warm-relevant subset of the machine configuration: the
// geometries and training policies that shape tag state. It is
// deliberately narrower than config.Config — two machines that differ
// only in timing parameters (latencies, widths, watchdogs) share warm
// state, so the artifact store is not split per model needlessly.
type Config struct {
	Hierarchy cache.HierarchyConfig
	TLB       tlb.Config
	BPred     bpred.Config
	TSSBF     memdep.TSSBFConfig
	SDP       memdep.SDPConfig
	// MaxDist bounds trainable store distances (config.MaxDist()).
	MaxDist int64
	// UseTAGE disables SDP warming: the TAGE-like predictor has no warm
	// codec, so those configurations get partial warming (caches, TLB,
	// branch predictor and T-SSBF only).
	UseTAGE bool
}

// ConfigFrom extracts the warm-relevant parameters of a machine
// configuration.
func ConfigFrom(c config.Config) Config {
	return Config{
		Hierarchy: c.Hierarchy,
		TLB:       c.TLB,
		BPred:     c.BPred,
		TSSBF:     c.TSSBF,
		SDP:       c.SDP,
		MaxDist:   c.MaxDist(),
		UseTAGE:   c.UseTAGE,
	}
}

// ParamsHash digests the warm-relevant configuration plus the format
// version for artifact keying: machines with equal hashes produce (and
// may share) identical warm state.
func (c Config) ParamsHash() [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "dmdp-warm\x00v%d\x00", Version)
	// The DRAM section of the hierarchy holds no tag state; everything
	// else in Config shapes the snapshot.
	fmt.Fprintf(h, "l1:%#v\x00l2:%#v\x00pf:%t\x00", c.Hierarchy.L1D, c.Hierarchy.L2, c.Hierarchy.NextLinePrefetch)
	fmt.Fprintf(h, "tlb:%#v\x00bp:%#v\x00tssbf:%#v\x00sdp:%#v\x00", c.TLB, c.BPred, c.TSSBF, c.SDP)
	fmt.Fprintf(h, "maxdist:%d\x00tage:%t\x00", c.MaxDist, c.UseTAGE)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// State is the functional warm model: real substrate instances driven
// without timing. The substrates' own statistics counters accumulate
// during warming but are never installed — the detailed core's counters
// keep their whole-run semantics.
type State struct {
	cfg   Config
	L1    *cache.Cache
	L2    *cache.Cache
	TLB   *tlb.TLB
	BP    *bpred.Predictor
	SDP   *memdep.SDP // nil when cfg.UseTAGE
	TSSBF *memdep.TSSBF

	// Stores is the absolute SSN of the most recent store processed
	// (the rebase point at install time).
	Stores int64
	// Entries counts processed trace entries (throughput accounting).
	Entries int64

	// Last-VPN shortcut: consecutive accesses to the same page skip the
	// fully associative TLB scan. Sound because a repeated hit only
	// re-bumps the already-MRU entry — a no-op in the rank order the
	// canonical encoding preserves.
	lastVPN   uint32
	lastVPNOK bool

	pageBytes uint32
	lineBytes uint32
	prefetch  bool
}

// New builds an empty (cold) warm state for the configuration.
func New(cfg Config) *State {
	s := &State{
		cfg:       cfg,
		L1:        cache.NewCache(cfg.Hierarchy.L1D),
		L2:        cache.NewCache(cfg.Hierarchy.L2),
		TLB:       tlb.New(cfg.TLB),
		BP:        bpred.New(cfg.BPred),
		TSSBF:     memdep.NewTSSBF(cfg.TSSBF),
		pageBytes: cfg.TLB.PageBytes,
		lineBytes: uint32(cfg.Hierarchy.L1D.LineBytes),
		prefetch:  cfg.Hierarchy.NextLinePrefetch,
	}
	if !cfg.UseTAGE {
		s.SDP = memdep.NewSDP(cfg.SDP)
	}
	return s
}

// Update advances the warm state by one trace entry. It uses only the
// raw entry fields (PC, op, address, size, taken, target) — streamed
// entries are un-analyzed, and the analyzed dependence fields must not
// influence warm state or the streamed and materialized paths would
// diverge.
//
// Per entry, in the detailed core's trace order:
//   - control ops train the branch predictor (fetch trains in trace
//     order, exactly like this);
//   - memory ops translate (AGI TLB access) and touch the cache
//     hierarchy with the demand-miss/writeback/prefetch tag behaviour
//     of cache.Hierarchy.Access, MSHR merges included (a merged access
//     hits the pre-filled L1 tag and skips L2 on both paths);
//   - loads probe the SDP (the rename-stage lookup, an LRU touch) and
//     train it against the T-SSBF answer — the same ground truth the
//     detailed core trains from at retire;
//   - stores bump the SSN and insert into the T-SSBF (retire order).
//
// This is functional warming: accesses happen in trace order rather
// than the out-of-order schedule, and prefetch MSHR occupancy cannot be
// modelled — the standard SMARTS approximations, documented in
// DESIGN.md §13.
func (s *State) Update(e *trace.Entry) {
	s.Entries++
	op := e.Instr.Op
	switch {
	case op.IsControl():
		s.BP.PredictAndTrain(e.PC, op, e.Taken, e.Target)
	case op.IsLoad():
		s.translate(e.Addr)
		s.access(e.Addr, false)
		if s.SDP != nil {
			s.trainLoad(e)
		}
	case op.IsStore():
		s.translate(e.Addr)
		s.access(e.Addr, true)
		s.Stores++
		s.TSSBF.Insert(e.WordAddr(), e.BAB(), s.Stores)
	}
}

// UpdateChunk processes a chunk of entries (the BuildStream callback
// granularity).
func (s *State) UpdateChunk(chunk []trace.Entry) {
	for i := range chunk {
		s.Update(&chunk[i])
	}
}

func (s *State) translate(addr uint32) {
	vpn := addr / s.pageBytes
	if s.lastVPNOK && vpn == s.lastVPN {
		return
	}
	s.TLB.Translate(addr)
	s.lastVPN, s.lastVPNOK = vpn, true
}

// access mirrors the tag-state effects of cache.Hierarchy.Access: L1
// demand access; a dirty L1 eviction writes back into L2 before the L2
// demand access; an L1 miss probes and fills L2; L2 victims go to DRAM,
// which holds no tags. A line with an outstanding MSHR behaves
// identically here: its L1 tag was filled at first access, so the
// merged access hits L1 and skips L2 on both the timed and warm paths.
func (s *State) access(addr uint32, write bool) {
	hit, wbAddr, wb := s.L1.WarmAccess(addr, write)
	if wb {
		s.L2.WarmAccess(wbAddr, true)
	}
	if hit {
		return
	}
	s.L2.WarmAccess(addr, false)
	if s.prefetch {
		s.prefetchLine(s.L1.LineAddr(addr) + s.lineBytes)
	}
}

// prefetchLine mirrors Hierarchy.prefetchLine's tag behaviour: on an L1
// demand miss the next line is probed and, if absent, filled through L2
// into L1. MSHR occupancy (which can suppress a timed prefetch) is
// timing state and is not modelled.
func (s *State) prefetchLine(lineAddr uint32) {
	if s.L1.Lookup(lineAddr) {
		return
	}
	s.L2.WarmAccess(lineAddr, false)
	if _, wbAddr, wb := s.L1.WarmAccess(lineAddr, false); wb {
		s.L2.WarmAccess(wbAddr, true)
	}
}

// trainLoad performs the rename-stage SDP lookup and the retire-stage
// training for one load, mirroring the detailed core's gated policy
// (lsu.go renameLoadSQFree + trainNoReexec/trainAfterReexec). The core
// only trains in two situations: a load that *used* a prediction
// (trained toward the colliding distance on a T-SSBF match, decayed
// toward the used distance when nothing collided), and a re-executed
// load whose collision was discovered at verify (trained toward the
// true distance). Training every in-window T-SSBF match instead — the
// obvious functional shortcut — over-populates the predictor with
// confident far dependencies the real machine never observes and
// skews the delay-heavy models (NoSQ) by double digits.
func (s *State) trainLoad(e *trace.Entry) {
	hist := s.BP.History()
	pred, hit := s.SDP.Predict(e.PC, hist)
	ssn, tagMatch, _ := s.TSSBF.LookupCovering(e.WordAddr(), e.BAB())
	actual := s.Stores - ssn
	inWin := tagMatch && actual >= 0 && actual <= s.cfg.MaxDist
	if hit {
		if s.Stores-pred.Dist < 1 {
			// No store that old exists yet; the core never arms the
			// bypass and leaves the table untouched.
			return
		}
		switch {
		case inWin && actual == pred.Dist:
			s.SDP.TrainCorrect(e.PC, hist, actual)
		case inWin:
			s.SDP.TrainWrong(e.PC, hist, actual)
		default:
			// Used prediction, no collision: decay toward the used
			// distance so stale entries lose confidence.
			s.SDP.TrainWrong(e.PC, hist, pred.Dist)
		}
		return
	}
	if inWin {
		// Re-execution bootstrap: an unpredicted collision is caught at
		// verify and trains toward the true distance.
		s.SDP.TrainWrong(e.PC, hist, actual)
	}
}

// Snapshot serialization: a magic/version header, the store count, an
// SDP presence flag, then one length-prefixed section per substrate.
var snapMagic = [8]byte{'D', 'M', 'D', 'P', 'W', 'R', 'M', '1'}

const snapHeader = 8 + 8 + 1

// Snapshot encodes the complete warm state canonically. Two states that
// would behave identically from here on encode to identical bytes (LRU
// timestamps are rank-normalized away), so snapshots double as the
// determinism oracle across the streamed, materialized and
// store-round-trip paths.
func (s *State) Snapshot() []byte {
	size := snapHeader + 4 + s.L1.WarmStateLen() + 4 + s.L2.WarmStateLen() +
		4 + s.TLB.WarmStateLen() + 4 + s.BP.WarmStateLen() + 4 + s.TSSBF.WarmStateLen()
	if s.SDP != nil {
		size += 4 + s.SDP.WarmStateLen()
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Stores))
	hasSDP := byte(0)
	if s.SDP != nil {
		hasSDP = 1
	}
	buf = append(buf, hasSDP)
	buf = appendSection(buf, s.L1.AppendWarmState)
	buf = appendSection(buf, s.L2.AppendWarmState)
	buf = appendSection(buf, s.TLB.AppendWarmState)
	buf = appendSection(buf, s.BP.AppendWarmState)
	if s.SDP != nil {
		buf = appendSection(buf, s.SDP.AppendWarmState)
	}
	buf = appendSection(buf, s.TSSBF.AppendWarmState)
	return buf
}

func appendSection(buf []byte, fn func([]byte) []byte) []byte {
	at := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = fn(buf)
	binary.LittleEndian.PutUint32(buf[at:], uint32(len(buf)-at-4))
	return buf
}

// FromSnapshot rebuilds a warm state from its canonical encoding under
// the given configuration. Any structural mismatch — wrong magic,
// truncation, geometry disagreement, trailing bytes — is an error; the
// caller treats it as a cold start.
func (s *State) loadSection(buf []byte, off int, load func([]byte) (int, error)) (int, error) {
	if off+4 > len(buf) {
		return 0, fmt.Errorf("warm: snapshot truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if n < 0 || off+n > len(buf) {
		return 0, fmt.Errorf("warm: snapshot section overruns buffer")
	}
	used, err := load(buf[off : off+n])
	if err != nil {
		return 0, err
	}
	if used != n {
		return 0, fmt.Errorf("warm: snapshot section length %d, decoded %d", n, used)
	}
	return off + n, nil
}

// FromSnapshot decodes snap into a fresh State for cfg.
func FromSnapshot(cfg Config, snap []byte) (*State, error) {
	if len(snap) < snapHeader || [8]byte(snap[:8]) != snapMagic {
		return nil, fmt.Errorf("warm: bad snapshot magic")
	}
	s := New(cfg)
	s.Stores = int64(binary.LittleEndian.Uint64(snap[8:16]))
	if s.Stores < 0 {
		return nil, fmt.Errorf("warm: negative store count")
	}
	hasSDP := snap[16] == 1
	if hasSDP == (s.SDP == nil) {
		return nil, fmt.Errorf("warm: snapshot SDP presence %t does not match configuration", hasSDP)
	}
	off := snapHeader
	var err error
	if off, err = s.loadSection(snap, off, s.L1.LoadWarmState); err != nil {
		return nil, err
	}
	if off, err = s.loadSection(snap, off, s.L2.LoadWarmState); err != nil {
		return nil, err
	}
	if off, err = s.loadSection(snap, off, s.TLB.LoadWarmState); err != nil {
		return nil, err
	}
	if off, err = s.loadSection(snap, off, s.BP.LoadWarmState); err != nil {
		return nil, err
	}
	if s.SDP != nil {
		if off, err = s.loadSection(snap, off, s.SDP.LoadWarmState); err != nil {
			return nil, err
		}
	}
	if off, err = s.loadSection(snap, off, s.TSSBF.LoadWarmState); err != nil {
		return nil, err
	}
	if off != len(snap) {
		return nil, fmt.Errorf("warm: %d trailing snapshot bytes", len(snap)-off)
	}
	return s, nil
}

// InstallInto transplants the warm tag state into a detailed core's
// substrates. Substrate statistics counters are untouched (they keep
// their whole-run semantics); the T-SSBF SSNs are rebased so the
// pre-interval stores appear older than anything the interval renames
// (see TSSBF.CopyWarmRebased). A TAGE distance predictor is left cold.
func (s *State) InstallInto(h *cache.Hierarchy, t *tlb.TLB, bp *bpred.Predictor, sdp memdep.DistancePredictor, tssbf *memdep.TSSBF) {
	h.L1D.CopyWarmFrom(s.L1)
	h.L2.CopyWarmFrom(s.L2)
	t.CopyWarmFrom(s.TLB)
	bp.CopyWarmFrom(s.BP)
	if s.SDP != nil {
		if d, ok := sdp.(*memdep.SDP); ok {
			d.CopyWarmFrom(s.SDP)
		}
	}
	tssbf.CopyWarmRebased(s.TSSBF, s.Stores)
}
