module dmdp

go 1.22
