package dmdp

import (
	"strings"
	"testing"

	"dmdp/internal/asm"
)

// asmAssemble avoids importing the assembler at every call site.
var asmAssemble = asm.Assemble

func TestWorkloadLists(t *testing.T) {
	if len(Workloads()) != 21 || len(IntWorkloads()) != 10 || len(FloatWorkloads()) != 11 {
		t.Fatal("workload suite composition wrong")
	}
}

func TestRunWorkload(t *testing.T) {
	st, err := RunWorkload(DefaultConfig(DMDP), "perl", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 10_000 || st.IPC() <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRunSource(t *testing.T) {
	src := `
	li $t0, 100
loop:
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	st, err := RunSource(DefaultConfig(Baseline), src, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 202 { // li + 100*(addi+bnez) + halt
		t.Fatalf("instructions = %d", st.Instructions)
	}
}

func TestRunSourceErrors(t *testing.T) {
	if _, err := RunSource(DefaultConfig(DMDP), "bogus instruction", 100); err == nil {
		t.Fatal("expected assembly error")
	}
	if _, err := RunWorkload(DefaultConfig(DMDP), "no-such-bench", 100); err == nil {
		t.Fatal("expected unknown workload error")
	}
	if _, err := WorkloadSource("no-such-bench"); err == nil {
		t.Fatal("expected unknown workload error")
	}
}

func TestWorkloadSource(t *testing.T) {
	src, err := WorkloadSource("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "main:") || !strings.Contains(src, ".data") {
		t.Fatal("source looks wrong")
	}
}

func TestEnergy(t *testing.T) {
	st, err := RunWorkload(DefaultConfig(NoSQ), "perl", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	e := Energy(st)
	if e.TotalPJ <= 0 || e.EDP <= 0 || e.EPI <= 0 {
		t.Fatalf("energy: %+v", e)
	}
}

func TestConfigVariants(t *testing.T) {
	tr, err := BuildWorkloadTrace("gcc", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Config{
		DefaultConfig(DMDP).WithIssueWidth(4),
		DefaultConfig(DMDP).WithROB(512),
		DefaultConfig(DMDP).WithPhysRegs(160),
		DefaultConfig(DMDP).WithStoreBuffer(16),
		DefaultConfig(DMDP).WithConsistency(RMO),
	}
	for i, cfg := range variants {
		st, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if st.Instructions != 10_000 {
			t.Fatalf("variant %d incomplete", i)
		}
	}
}

func TestRunTracedRendersPipeline(t *testing.T) {
	tr, err := BuildWorkloadTrace("perl", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	st, pt, err := RunTraced(DefaultConfig(DMDP), tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 3_000 {
		t.Fatalf("instructions %d", st.Instructions)
	}
	var b strings.Builder
	pt.Render(&b)
	out := b.String()
	if !strings.Contains(out, "pipeview") || !strings.Contains(out, "R") {
		t.Fatalf("render output:\n%s", out)
	}
	if len(pt.Records) != 20 {
		t.Fatalf("records %d", len(pt.Records))
	}
}

func TestLoadObjectRoundTrip(t *testing.T) {
	src := `
	li $t0, 7
	sw $t0, -4($sp)
	lw $t1, -4($sp)
	halt
`
	p, err := asmAssemble(src)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := LoadObject(blob, 100)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(DefaultConfig(NoSQ), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalLoads() != 1 {
		t.Fatalf("loads %d", st.TotalLoads())
	}
	if _, err := LoadObject([]byte("garbage"), 100); err == nil {
		t.Fatal("garbage object must fail")
	}
}

func TestWarmupFacade(t *testing.T) {
	cfg := DefaultConfig(DMDP).WithWarmup(2_000)
	st, err := RunWorkload(cfg, "perl", 6_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 4_000 {
		t.Fatalf("measured %d instructions, want 4000", st.Instructions)
	}
}
