package dmdp

// One benchmark per paper table/figure: each regenerates the experiment's
// rows via the harness (at a reduced instruction budget so `go test
// -bench=.` finishes quickly; cmd/experiments runs the full-budget
// reproduction). b.N loops re-run the full pipeline: workload generation,
// assembly, functional emulation, dependence analysis and the cycle-level
// simulations behind the artifact.

import (
	"testing"

	"dmdp/internal/experiments"
)

const benchBudget = 20_000

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Budget: benchBudget, Parallel: true})
		if err := r.Prefetch(); err != nil {
			b.Fatal(err)
		}
		out, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkFig2LoadDistribution(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3DelayedVsBypassing(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig5LowConfidenceBreakdown(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig12Speedup(b *testing.B)               { benchExperiment(b, "fig12") }
func BenchmarkFig14StoreBufferSize(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15EDP(b *testing.B)                   { benchExperiment(b, "fig15") }
func BenchmarkTableIVLoadExecTime(b *testing.B)        { benchExperiment(b, "tab4") }
func BenchmarkTableVLowConfLoads(b *testing.B)         { benchExperiment(b, "tab5") }
func BenchmarkTableVIMPKI(b *testing.B)                { benchExperiment(b, "tab6") }
func BenchmarkTableVIIReexecStalls(b *testing.B)       { benchExperiment(b, "tab7") }
func BenchmarkAltIssue4(b *testing.B)                  { benchExperiment(b, "alt-issue4") }
func BenchmarkAltROB512(b *testing.B)                  { benchExperiment(b, "alt-rob512") }
func BenchmarkAltRMO(b *testing.B)                     { benchExperiment(b, "alt-rmo") }
func BenchmarkAltPRF160(b *testing.B)                  { benchExperiment(b, "alt-prf160") }
func BenchmarkAblSilentPolicy(b *testing.B)            { benchExperiment(b, "abl-silent") }
func BenchmarkAblBiasedConfidence(b *testing.B)        { benchExperiment(b, "abl-biased") }
func BenchmarkAblTAGE(b *testing.B)                    { benchExperiment(b, "abl-tage") }
func BenchmarkAblCoalescing(b *testing.B)              { benchExperiment(b, "abl-coalesce") }
func BenchmarkAblInvalidations(b *testing.B)           { benchExperiment(b, "abl-inval") }
func BenchmarkAltFnF(b *testing.B)                     { benchExperiment(b, "alt-fnf") }
func BenchmarkAblPrefetch(b *testing.B)                { benchExperiment(b, "abl-prefetch") }

// BenchmarkSuiteParallel measures the deterministic parallel experiment
// engine end to end: one WarmUp over the union of every experiment's
// declared runs (deduplicated by config digest, scheduled
// longest-trace-first on the worker pool), then rendering all 21
// experiments from warm cache. This is the benchmark the full-suite
// wall-clock numbers in BENCH_*.json track.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Budget: benchBudget, Parallel: true})
		if err := r.WarmUp(experiments.All()...); err != nil {
			b.Fatal(err)
		}
		for _, e := range experiments.All() {
			out, err := e.Run(r)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty experiment output")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall-clock second) of the DMDP core on one proxy.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := BuildWorkloadTrace("gcc", 50_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(DMDP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tr.Entries)))
}
