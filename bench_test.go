package dmdp

// One benchmark per paper table/figure: each regenerates the experiment's
// rows via the harness (at a reduced instruction budget so `go test
// -bench=.` finishes quickly; cmd/experiments runs the full-budget
// reproduction). b.N loops re-run the full pipeline: workload generation,
// assembly, functional emulation, dependence analysis and the cycle-level
// simulations behind the artifact.

import (
	"crypto/sha256"
	"os"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/experiments"
)

const benchBudget = 20_000

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Budget: benchBudget, Parallel: true})
		if err := r.Prefetch(); err != nil {
			b.Fatal(err)
		}
		out, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkFig2LoadDistribution(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3DelayedVsBypassing(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig5LowConfidenceBreakdown(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig12Speedup(b *testing.B)               { benchExperiment(b, "fig12") }
func BenchmarkFig14StoreBufferSize(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15EDP(b *testing.B)                   { benchExperiment(b, "fig15") }
func BenchmarkTableIVLoadExecTime(b *testing.B)        { benchExperiment(b, "tab4") }
func BenchmarkTableVLowConfLoads(b *testing.B)         { benchExperiment(b, "tab5") }
func BenchmarkTableVIMPKI(b *testing.B)                { benchExperiment(b, "tab6") }
func BenchmarkTableVIIReexecStalls(b *testing.B)       { benchExperiment(b, "tab7") }
func BenchmarkAltIssue4(b *testing.B)                  { benchExperiment(b, "alt-issue4") }
func BenchmarkAltROB512(b *testing.B)                  { benchExperiment(b, "alt-rob512") }
func BenchmarkAltRMO(b *testing.B)                     { benchExperiment(b, "alt-rmo") }
func BenchmarkAltPRF160(b *testing.B)                  { benchExperiment(b, "alt-prf160") }
func BenchmarkAblSilentPolicy(b *testing.B)            { benchExperiment(b, "abl-silent") }
func BenchmarkAblBiasedConfidence(b *testing.B)        { benchExperiment(b, "abl-biased") }
func BenchmarkAblTAGE(b *testing.B)                    { benchExperiment(b, "abl-tage") }
func BenchmarkAblCoalescing(b *testing.B)              { benchExperiment(b, "abl-coalesce") }
func BenchmarkAblInvalidations(b *testing.B)           { benchExperiment(b, "abl-inval") }
func BenchmarkAltFnF(b *testing.B)                     { benchExperiment(b, "alt-fnf") }
func BenchmarkAblPrefetch(b *testing.B)                { benchExperiment(b, "abl-prefetch") }

// BenchmarkSuiteParallel measures the deterministic parallel experiment
// engine end to end: one WarmUp over the union of every experiment's
// declared runs (deduplicated by config digest, scheduled
// longest-trace-first on the worker pool), then rendering all 21
// experiments from warm cache. This is the benchmark the full-suite
// wall-clock numbers in BENCH_*.json track.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Budget: benchBudget, Parallel: true})
		if err := r.WarmUp(experiments.All()...); err != nil {
			b.Fatal(err)
		}
		for _, e := range experiments.All() {
			out, err := e.Run(r)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty experiment output")
			}
		}
	}
}

// BenchmarkTraceBuild measures the full trace pipeline for one proxy:
// workload generation, assembly, functional emulation and dependence
// analysis. This is the cost a trace-store hit avoids.
func BenchmarkTraceBuild(b *testing.B) {
	const budget = 300_000
	for i := 0; i < b.N; i++ {
		tr, err := BuildWorkloadTrace("gcc", budget)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Entries) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceDecode measures a trace-store hit. The first load of a
// file pays the full cost — mmap, payload checksum, structural decode,
// zero-copy entries cast; reloading the same verified file returns the
// memoized trace (see Store.LoadTrace), so the steady state this
// benchmark reports is the per-hit cost the experiment suite actually
// pays. The acceptance bar for the store is a >=10x advantage over
// BenchmarkTraceBuild (the cold first load alone clears ~7x; the
// steady-state hit clears it by orders of magnitude).
func BenchmarkTraceDecode(b *testing.B) {
	const budget = 300_000
	store, err := artifact.Open(b.TempDir(), artifact.RW, artifact.DefaultMaxBytes)
	if err != nil {
		b.Fatal(err)
	}
	src, err := WorkloadSource("gcc")
	if err != nil {
		b.Fatal(err)
	}
	key := artifact.TraceKey(sha256.Sum256([]byte(src)), budget)
	tr, err := BuildWorkloadTrace("gcc", budget)
	if err != nil {
		b.Fatal(err)
	}
	store.StoreTrace(key, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok := store.LoadTrace(key)
		if !ok || len(got.Entries) != len(tr.Entries) {
			b.Fatal("decode miss or short trace")
		}
	}
}

// benchSuiteOnce renders one full suite pass at -j1 against the cache
// directory. Single-worker runs make the cold/warm ratio a pure measure
// of work avoided, not of scheduling.
func benchSuiteOnce(b *testing.B, dir string) {
	b.Helper()
	store, err := artifact.Open(dir, artifact.RW, artifact.DefaultMaxBytes)
	if err != nil {
		b.Fatal(err)
	}
	r := experiments.NewRunner(experiments.Options{
		Budget: benchBudget, Parallel: true, Jobs: 1, Cache: store,
	})
	if err := r.WarmUp(experiments.All()...); err != nil {
		b.Fatal(err)
	}
	for _, e := range experiments.All() {
		out, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkSuiteColdCache: full suite, -j1, fresh cache directory per
// iteration — every trace and result is built, simulated and persisted.
func BenchmarkSuiteColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(b.TempDir(), "cold")
		if err != nil {
			b.Fatal(err)
		}
		benchSuiteOnce(b, dir)
	}
}

// BenchmarkSuiteWarmCache: full suite, -j1, over a cache populated once
// before the timer — every result comes from the store. The acceptance
// bar is a >=5x advantage over BenchmarkSuiteColdCache.
func BenchmarkSuiteWarmCache(b *testing.B) {
	dir := b.TempDir()
	benchSuiteOnce(b, dir) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSuiteOnce(b, dir)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per wall-clock second) of the DMDP core on one proxy.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := BuildWorkloadTrace("gcc", 50_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(DMDP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tr.Entries)))
}
