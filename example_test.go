package dmdp_test

import (
	"fmt"
	"log"

	"dmdp"
)

// The simplest use: run a proxy benchmark under DMDP and read the
// headline statistics.
func ExampleRunWorkload() {
	st, err := dmdp.RunWorkload(dmdp.DefaultConfig(dmdp.DMDP), "perl", 20_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.Instructions, "instructions retired")
	// Output: 20000 instructions retired
}

// Custom programs run through the same pipeline: assemble, emulate,
// simulate.
func ExampleRunSource() {
	src := `
	li  $t0, 64
	li  $t1, 0
loop:
	add $t1, $t1, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	halt
`
	st, err := dmdp.RunSource(dmdp.DefaultConfig(dmdp.Baseline), src, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.Instructions, "instructions,", st.DepMispredicts, "dependence mispredictions")
	// Output: 195 instructions, 0 dependence mispredictions
}

// Comparing mechanisms on one trace: build the trace once, run each
// model over it.
func ExampleRun() {
	tr, err := dmdp.BuildWorkloadTrace("gromacs", 20_000)
	if err != nil {
		log.Fatal(err)
	}
	nosq, err := dmdp.Run(dmdp.DefaultConfig(dmdp.NoSQ), tr)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := dmdp.Run(dmdp.DefaultConfig(dmdp.DMDP), tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dmdp beats nosq: %v\n", dm.IPC() > nosq.IPC())
	// Output: dmdp beats nosq: true
}

// Machine variants derive from the default configuration.
func ExampleConfig() {
	cfg := dmdp.DefaultConfig(dmdp.DMDP).
		WithStoreBuffer(64).
		WithConsistency(dmdp.RMO).
		WithPrefetch(true)
	fmt.Println(cfg.StoreBufferSize, cfg.Consistency)
	// Output: 64 rmo
}

// SimPoint-style sampling (paper §V): simulate weighted intervals
// instead of the whole trace.
func ExampleRunSampled() {
	tr, err := dmdp.BuildWorkloadTrace("sjeng", 30_000)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := dmdp.UniformSampling(len(tr.Entries), 5_000, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dmdp.RunSampled(dmdp.DefaultConfig(dmdp.DMDP), tr, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Results), "intervals,", res.TotalInstructions, "instructions")
	// Output: 3 intervals, 15000 instructions
}

// Energy accounting for a finished run.
func ExampleEnergy() {
	st, err := dmdp.RunWorkload(dmdp.DefaultConfig(dmdp.NoSQ), "perl", 10_000)
	if err != nil {
		log.Fatal(err)
	}
	e := dmdp.Energy(st)
	fmt.Println(e.TotalPJ > 0, e.EDP > 0, len(e.Breakdown) > 0)
	// Output: true true true
}
