// Package dmdp is the public API of the Dynamic Memory Dependence
// Predication reproduction (Jin & Önder, ISCA 2018): a cycle-level
// out-of-order processor model with four store-load communication
// mechanisms — a baseline store-queue machine, NoSQ, DMDP and a Perfect
// oracle — plus the synthetic SPEC CPU2006 proxy workloads and the
// harness that regenerates every table and figure of the paper's
// evaluation.
//
// Quick start:
//
//	cfg := dmdp.DefaultConfig(dmdp.DMDP)
//	st, err := dmdp.RunWorkload(cfg, "hmmer", 100_000)
//	fmt.Printf("IPC %.2f, MPKI %.2f\n", st.IPC(), st.MPKI())
//
// Arbitrary programs in the simulator's MIPS-I-like assembly can be run
// with RunSource. See the examples/ directory and DESIGN.md.
package dmdp

import (
	"fmt"

	"dmdp/internal/asm"
	"dmdp/internal/config"
	"dmdp/internal/core"
	"dmdp/internal/emu"
	"dmdp/internal/faults"
	"dmdp/internal/isa"
	"dmdp/internal/power"
	"dmdp/internal/sampling"
	"dmdp/internal/trace"
	"dmdp/internal/workload"
)

// Model selects the store-load communication mechanism.
type Model = config.Model

// The four simulated models.
const (
	Baseline = config.Baseline
	NoSQ     = config.NoSQ
	DMDP     = config.DMDP
	Perfect  = config.Perfect
	FnF      = config.FnF
)

// Consistency selects the store buffer commit ordering.
type Consistency = config.Consistency

// Memory consistency models.
const (
	TSO = config.TSO
	RMO = config.RMO
)

// Config is the machine description; obtain one from DefaultConfig and
// adjust with its With* methods.
type Config = config.Config

// Stats is the result of one simulation.
type Stats = core.Stats

// EnergyResult is the power model's output.
type EnergyResult = power.Result

// Trace is an analyzed correct-path execution.
type Trace = trace.Trace

// DefaultConfig returns the paper's 8-wide baseline machine configured
// for the given model.
func DefaultConfig(m Model) Config { return config.Default(m) }

// Workloads lists the 21 SPEC CPU2006 proxy benchmarks (Integer suite
// first, paper order).
func Workloads() []string { return workload.Names() }

// IntWorkloads lists the Integer suite.
func IntWorkloads() []string { return workload.IntNames() }

// FloatWorkloads lists the Float suite.
func FloatWorkloads() []string { return workload.FloatNames() }

// WorkloadSource returns the generated assembly of a proxy benchmark.
func WorkloadSource(name string) (string, error) {
	s, ok := workload.Get(name)
	if !ok {
		return "", fmt.Errorf("dmdp: unknown workload %q", name)
	}
	return s.Source(), nil
}

// BuildWorkloadTrace assembles, emulates and analyzes a proxy benchmark
// for at most maxInstr instructions.
func BuildWorkloadTrace(name string, maxInstr int64) (*Trace, error) {
	s, ok := workload.Get(name)
	if !ok {
		return nil, fmt.Errorf("dmdp: unknown workload %q", name)
	}
	return s.BuildTrace(maxInstr)
}

// BuildTrace assembles src (MIPS-I-like assembly; see internal/asm) and
// runs it functionally for at most maxInstr instructions, returning the
// analyzed trace.
func BuildTrace(src string, maxInstr int64) (*Trace, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return emu.Run(p, maxInstr)
}

// Run simulates an analyzed trace under cfg.
func Run(cfg Config, tr *Trace) (*Stats, error) {
	c, err := core.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// RunWorkload simulates a proxy benchmark under cfg for at most maxInstr
// instructions.
func RunWorkload(cfg Config, name string, maxInstr int64) (*Stats, error) {
	tr, err := BuildWorkloadTrace(name, maxInstr)
	if err != nil {
		return nil, err
	}
	return Run(cfg, tr)
}

// RunSource assembles and simulates an assembly program.
func RunSource(cfg Config, src string, maxInstr int64) (*Stats, error) {
	tr, err := BuildTrace(src, maxInstr)
	if err != nil {
		return nil, err
	}
	return Run(cfg, tr)
}

// Energy evaluates the reference power model over a run's statistics.
func Energy(st *Stats) EnergyResult { return power.Compute(st, power.DefaultParams()) }

// SimError is the structured failure a hardened run returns: a
// commit-time oracle divergence, a tripped watchdog, a trace desync or a
// register refcount underflow, with the cycle, PC, disassembly, the last
// retired instructions and a pipeline occupancy snapshot. Extract it
// with errors.As and render the full diagnostic with its Bundle method.
type SimError = core.SimError

// FaultConfig configures the deterministic fault injector (set it on
// Config.Faults or via Config.WithFaults; the zero value disables
// injection).
type FaultConfig = faults.Config

// FaultCounts reports injected faults by class (Stats.Faults).
type FaultCounts = faults.Counts

// WatchdogConfig bounds a run's total cycles and no-retire window
// (Config.Watchdog or Config.WithWatchdog).
type WatchdogConfig = config.Watchdog

// PipeTracer records per-instruction pipeline stage timings.
type PipeTracer = core.PipeTracer

// RunTraced simulates tr under cfg with pipeline tracing enabled for the
// first maxRecords retired instructions; render the result with
// PipeTracer.Render.
func RunTraced(cfg Config, tr *Trace, maxRecords int) (*Stats, *PipeTracer, error) {
	c, err := core.New(cfg, tr)
	if err != nil {
		return nil, nil, err
	}
	pt := c.AttachTracer(maxRecords)
	st, err := c.Run()
	if err != nil {
		return nil, nil, err
	}
	return st, pt, nil
}

// LoadObject parses a DMO1 binary object produced by cmd/dmdpasm -o and
// runs it functionally for at most maxInstr instructions, returning the
// analyzed trace.
func LoadObject(data []byte, maxInstr int64) (*Trace, error) {
	p, err := isa.UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return emu.Run(p, maxInstr)
}

// SamplingPlan selects weighted trace intervals to simulate (the paper's
// SimPoint-style methodology, §V).
type SamplingPlan = sampling.Plan

// SampledResult is the weighted aggregate of a sampled simulation.
type SampledResult = sampling.Combined

// UniformSampling builds a plan of count equally weighted intervals of
// intervalLen entries spread across a trace of traceLen entries.
func UniformSampling(traceLen, intervalLen, count int) (SamplingPlan, error) {
	return sampling.Uniform(traceLen, intervalLen, count)
}

// RunSampled simulates the plan's intervals independently (cold start,
// like the paper's checkpoints) and combines the statistics by weight.
func RunSampled(cfg Config, tr *Trace, plan SamplingPlan) (*SampledResult, error) {
	return sampling.Run(tr, cfg, plan)
}
