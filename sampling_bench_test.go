package dmdp

import (
	"context"
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/config"
	"dmdp/internal/sampling"
	"dmdp/internal/workload"
)

// The checkpoint-vs-roll-forward pair below measures interval extraction
// for a whole sampling plan on a materialized trace. Roll-forward pays
// O(interval start) memory-image replay per interval; a warm checkpoint
// store restores each begin image from its persisted dirty-page delta.
// The gap is the reason checkpointed sampling scales to 100M+ budgets
// (BENCH_0005.json records the baseline; DESIGN.md §12 has the scheme).

const (
	samplingBenchBudget = 2_000_000
	samplingIntervalLen = 1_000
	samplingCount       = 8
	samplingWarmup      = 250
)

func samplingBenchSetup(b *testing.B) (*Trace, sampling.Plan, artifact.Key) {
	b.Helper()
	spec, ok := workload.Get("gcc")
	if !ok {
		b.Fatal("gcc proxy missing")
	}
	tr, err := spec.BuildTrace(samplingBenchBudget)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sampling.Uniform(len(tr.Entries), samplingIntervalLen, samplingCount)
	if err != nil {
		b.Fatal(err)
	}
	return tr, plan.WithWarmup(samplingWarmup), artifact.TraceKey(spec.SourceHash(), samplingBenchBudget)
}

// BenchmarkRollForwardSlice: every interval begin is reached by replaying
// the memory image from entry 0 — the legacy Slice path.
func BenchmarkRollForwardSlice(b *testing.B) {
	tr, plan, key := samplingBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.NewTraceSource(tr, plan, nil, key, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The cold/warm Execute pair times the whole sampled pipeline on the
// streaming path — profiling pass, planning, interval simulation — with
// functional warming off and on. The warming overhead rides the
// profiling pass (tag-only updates at tens of Mentries/s) plus one
// delta snapshot per checkpoint; BENCH_0006.json records the baseline
// and the 100M-budget sampled-vs-full wall-clock gap.

func benchmarkSampledExecute(b *testing.B, warm bool) {
	spec, ok := workload.Get("gcc")
	if !ok {
		b.Fatal("gcc proxy missing")
	}
	prog, err := spec.Program()
	if err != nil {
		b.Fatal(err)
	}
	req := sampling.Request{
		Spec:     sampling.Spec{Count: samplingCount, Len: samplingIntervalLen, Warmup: samplingWarmup},
		Budget:   samplingBenchBudget,
		Jobs:     1,
		TraceKey: artifact.TraceKey(spec.SourceHash(), samplingBenchBudget),
		Prog:     prog,
		Warm:     warm,
	}
	cfg := config.Default(config.DMDP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.Execute(context.Background(), cfg, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampledExecuteCold(b *testing.B) { benchmarkSampledExecute(b, false) }
func BenchmarkSampledExecuteWarm(b *testing.B) { benchmarkSampledExecute(b, true) }

// BenchmarkCheckpointRestore: identical extraction against a warm
// checkpoint store — each begin image restores from its dirty-page delta
// instead of replaying the prefix.
func BenchmarkCheckpointRestore(b *testing.B) {
	tr, plan, key := samplingBenchSetup(b)
	store, err := artifact.Open(b.TempDir(), artifact.RW, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Cold pass publishes the checkpoints the timed passes restore.
	if _, err := sampling.NewTraceSource(tr, plan, store, key, true, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.NewTraceSource(tr, plan, store, key, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}
