package dmdp

import (
	"testing"

	"dmdp/internal/artifact"
	"dmdp/internal/sampling"
	"dmdp/internal/workload"
)

// The checkpoint-vs-roll-forward pair below measures interval extraction
// for a whole sampling plan on a materialized trace. Roll-forward pays
// O(interval start) memory-image replay per interval; a warm checkpoint
// store restores each begin image from its persisted dirty-page delta.
// The gap is the reason checkpointed sampling scales to 100M+ budgets
// (BENCH_0005.json records the baseline; DESIGN.md §12 has the scheme).

const (
	samplingBenchBudget = 2_000_000
	samplingIntervalLen = 1_000
	samplingCount       = 8
	samplingWarmup      = 250
)

func samplingBenchSetup(b *testing.B) (*Trace, sampling.Plan, artifact.Key) {
	b.Helper()
	spec, ok := workload.Get("gcc")
	if !ok {
		b.Fatal("gcc proxy missing")
	}
	tr, err := spec.BuildTrace(samplingBenchBudget)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := sampling.Uniform(len(tr.Entries), samplingIntervalLen, samplingCount)
	if err != nil {
		b.Fatal(err)
	}
	return tr, plan.WithWarmup(samplingWarmup), artifact.TraceKey(spec.SourceHash(), samplingBenchBudget)
}

// BenchmarkRollForwardSlice: every interval begin is reached by replaying
// the memory image from entry 0 — the legacy Slice path.
func BenchmarkRollForwardSlice(b *testing.B) {
	tr, plan, key := samplingBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.NewTraceSource(tr, plan, nil, key, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore: identical extraction against a warm
// checkpoint store — each begin image restores from its dirty-page delta
// instead of replaying the prefix.
func BenchmarkCheckpointRestore(b *testing.B) {
	tr, plan, key := samplingBenchSetup(b)
	store, err := artifact.Open(b.TempDir(), artifact.RW, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Cold pass publishes the checkpoints the timed passes restore.
	if _, err := sampling.NewTraceSource(tr, plan, store, key, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.NewTraceSource(tr, plan, store, key, true); err != nil {
			b.Fatal(err)
		}
	}
}
